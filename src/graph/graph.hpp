// Simple immutable undirected graph with sorted adjacency lists.
//
// Used both as the communication graph handed to the CONGEST simulator and
// as the input to the maximal-matching protocols (which operate on general
// graphs, per Israeli–Itai [8]).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "congest/types.hpp"

namespace dasm {

/// Undirected edge as an ordered pair (u < v after normalization).
struct Edge {
  NodeId u;
  NodeId v;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

class Graph {
 public:
  /// Empty graph on n vertices.
  explicit Graph(NodeId n = 0);

  /// Graph on n vertices with the given undirected edges. Duplicate edges
  /// and self-loops are rejected.
  Graph(NodeId n, const std::vector<Edge>& edges);

  NodeId node_count() const { return static_cast<NodeId>(adj_.size()); }
  std::int64_t edge_count() const { return edge_count_; }

  const std::vector<NodeId>& neighbors(NodeId v) const;
  NodeId degree(NodeId v) const;
  bool has_edge(NodeId u, NodeId v) const;

  /// All edges, normalized (u < v) and sorted.
  std::vector<Edge> edges() const;

  /// Adjacency lists, e.g. to construct a congest::Network.
  const std::vector<std::vector<NodeId>>& adjacency() const { return adj_; }

  /// Maximum vertex degree (0 for the empty graph).
  NodeId max_degree() const;

 private:
  std::vector<std::vector<NodeId>> adj_;
  std::int64_t edge_count_ = 0;
};

}  // namespace dasm
