// Bipartite communication graph between men and women (§2.1).
//
// Global node ids place the men first: man i has id i, woman j has id
// n_men + j. This is the id space used by the CONGEST simulator, the
// matching protocols and the ASM players.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace dasm {

class BipartiteGraph {
 public:
  /// Builds the communication graph from per-man neighbour lists:
  /// `men_to_women[i]` lists the woman indices on man i's preference list.
  /// Symmetry is implied (each listed edge is a mutual ranking).
  BipartiteGraph(NodeId n_men, NodeId n_women,
                 const std::vector<std::vector<NodeId>>& men_to_women);

  NodeId n_men() const { return n_men_; }
  NodeId n_women() const { return n_women_; }
  NodeId node_count() const { return n_men_ + n_women_; }

  NodeId man_id(NodeId man_index) const;
  NodeId woman_id(NodeId woman_index) const;
  bool is_man(NodeId id) const;
  bool is_woman(NodeId id) const;
  NodeId man_index(NodeId id) const;
  NodeId woman_index(NodeId id) const;

  const Graph& graph() const { return graph_; }

 private:
  NodeId n_men_;
  NodeId n_women_;
  Graph graph_;
};

}  // namespace dasm
