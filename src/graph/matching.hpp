// Matchings and their quality predicates (Definitions 3 and 4).
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace dasm {

/// A matching over the node-id space of a Graph, stored as a partner map.
/// Invariant: partner_of(u) == v  <=>  partner_of(v) == u.
class Matching {
 public:
  explicit Matching(NodeId n = 0);

  NodeId node_count() const { return static_cast<NodeId>(partner_.size()); }

  /// Adds edge (u, v); both endpoints must currently be unmatched.
  void add(NodeId u, NodeId v);

  /// Removes the matched edge incident to u (u must be matched).
  void remove(NodeId u);

  bool is_matched(NodeId v) const;
  /// Matched partner of v, or kNoNode.
  NodeId partner_of(NodeId v) const;

  /// Number of matched edges.
  std::int64_t size() const { return size_; }

  /// Matched edges, normalized and sorted.
  std::vector<Edge> edges() const;

  /// True if every matched edge exists in g.
  bool is_valid(const Graph& g) const;

  /// Vertices violating maximality (Definition 3): unmatched vertices with
  /// at least one unmatched neighbour.
  std::vector<NodeId> unsatisfied_vertices(const Graph& g) const;

  /// True iff no edge of g has both endpoints unmatched (Definition 3).
  bool is_maximal(const Graph& g) const;

  /// True iff at most eta * |V| vertices are unsatisfied (Definition 4).
  bool is_almost_maximal(const Graph& g, double eta) const;

  friend bool operator==(const Matching&, const Matching&) = default;

 private:
  std::vector<NodeId> partner_;
  std::int64_t size_ = 0;
};

}  // namespace dasm
