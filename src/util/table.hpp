// Column-aligned plain-text table printer used by the experiment harness to
// emit the rows/series each experiment in EXPERIMENTS.md reports.
#pragma once

#include <concepts>
#include <iosfwd>
#include <string>
#include <vector>

namespace dasm {

/// Builds a fixed-schema table row by row and renders it with aligned
/// columns. Cells are strings; helpers format numbers consistently.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const { return rows_.size(); }

  /// Renders with a header rule and two-space column gaps.
  void print(std::ostream& os) const;

  /// Formats a double with the given precision, trimming trailing zeros.
  static std::string num(double v, int precision = 4);
  /// Formats an integer-valued cell (exact match for any integral type,
  /// so integer arguments never fall into the double overload).
  template <std::integral T>
  static std::string num(T v) {
    return std::to_string(v);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dasm
