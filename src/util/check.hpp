// Lightweight precondition / invariant checking.
//
// DASM_CHECK is always on (used to validate library invariants and user
// input); DASM_DCHECK compiles out in release builds and guards expensive
// internal assertions. Both throw dasm::CheckError so tests can assert on
// violations instead of aborting the process.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dasm {

/// Raised when a DASM_CHECK / DASM_DCHECK condition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace dasm

#define DASM_CHECK(cond)                                                \
  do {                                                                  \
    if (!(cond)) ::dasm::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define DASM_CHECK_MSG(cond, msg)                                       \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream dasm_check_os_;                                \
      dasm_check_os_ << msg;                                            \
      ::dasm::detail::check_failed(#cond, __FILE__, __LINE__,           \
                                   dasm_check_os_.str());               \
    }                                                                   \
  } while (0)

#ifdef NDEBUG
#define DASM_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define DASM_DCHECK(cond) DASM_CHECK(cond)
#endif
