// Minimal command-line flag parser for the examples and experiment
// binaries: flags are --name=value or --name value; anything else is a
// positional argument.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dasm {

/// Parsed command line. Typed getters fall back to a default when the flag
/// is absent and throw CheckError on malformed values.
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

  /// Names of every flag present on the command line, sorted — lets
  /// callers reject unknown flags instead of silently ignoring a typo
  /// (e.g. `--theads 4` running serial).
  std::vector<std::string> flag_names() const;

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace dasm
