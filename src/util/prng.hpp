// Deterministic pseudo-random number generation.
//
// All randomness in the library flows from a single 64-bit seed. Each
// distributed processor derives an independent stream with derive_stream()
// (splitmix64 over (seed, salt)), so executions are reproducible regardless
// of the order in which processors are simulated.
//
// The generator is xoshiro256** — fast, tiny state, excellent statistical
// quality, and (unlike std::mt19937) identical output across standard
// library implementations.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "util/check.hpp"

namespace dasm {

/// splitmix64 step: the canonical 64-bit mixer, used for seeding streams.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via splitmix64 so any seed (including 0)
  /// yields a well-mixed state.
  explicit Xoshiro256(std::uint64_t seed = 0) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Unbiased uniform integer in [0, bound). bound must be positive.
  std::uint64_t below(std::uint64_t bound) {
    DASM_DCHECK(bound > 0);
    // Lemire's rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    DASM_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform01() < p; }

  /// Fisher–Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    const auto n = c.size();
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = below(i);
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Derives an independent generator from (seed, salt) — e.g. one stream per
/// simulated processor, salt = node id.
inline Xoshiro256 derive_stream(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t sm = seed ^ (0x632be59bd9b4e019ULL * (salt + 1));
  const std::uint64_t derived = splitmix64(sm) ^ splitmix64(sm);
  return Xoshiro256(derived);
}

}  // namespace dasm
