#include "util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

#include "util/check.hpp"

namespace dasm {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string body = arg.substr(2);
      auto eq = body.find('=');
      if (eq != std::string::npos) {
        flags_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        flags_[body] = argv[++i];
      } else {
        flags_[body] = "true";
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::vector<std::string> Cli::flag_names() const {
  std::vector<std::string> names;
  names.reserve(flags_.size());
  for (const auto& [name, value] : flags_) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

std::string Cli::get(const std::string& name,
                     const std::string& fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name,
                          std::int64_t fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    DASM_CHECK_MSG(false, "flag --" << name << " expects an integer, got '"
                                    << it->second << "'");
  }
  return fallback;  // unreachable
}

double Cli::get_double(const std::string& name, double fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    DASM_CHECK_MSG(false, "flag --" << name << " expects a number, got '"
                                    << it->second << "'");
  }
  return fallback;  // unreachable
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  DASM_CHECK_MSG(false, "flag --" << name << " expects a boolean, got '" << v
                                  << "'");
  return fallback;  // unreachable
}

}  // namespace dasm
