#include "util/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace dasm {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DASM_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  DASM_CHECK_MSG(cells.size() == headers_.size(),
                 "row has " << cells.size() << " cells, expected "
                            << headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace dasm
