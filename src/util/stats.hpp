// Small statistics toolkit used by tests and the benchmark harness:
// streaming summaries, percentiles, and least-squares fits (used to verify
// asymptotic shapes, e.g. that ASM's round count grows polylogarithmically).
#pragma once

#include <cstddef>
#include <vector>

namespace dasm {

/// Streaming univariate summary (Welford's algorithm).
class Summary {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  /// Half-width of an approximate 95% confidence interval for the mean.
  double ci95_halfwidth() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Result of an ordinary least-squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// Least-squares fit over paired samples. Requires xs.size() == ys.size()
/// and at least two points.
LinearFit linear_fit(const std::vector<double>& xs,
                     const std::vector<double>& ys);

/// Fit y = a * x^b by regressing log y on log x; returns {slope = b,
/// intercept = log a}. All inputs must be positive.
LinearFit loglog_fit(const std::vector<double>& xs,
                     const std::vector<double>& ys);

/// Fit y = a + b * log2(x): detects polylogarithmic growth. xs positive.
LinearFit semilog_fit(const std::vector<double>& xs,
                      const std::vector<double>& ys);

/// p-th percentile (p in [0, 100]) with linear interpolation. data is
/// copied and sorted; must be non-empty.
double percentile(std::vector<double> data, double p);

/// Arithmetic mean of a vector; 0 for empty input.
double mean_of(const std::vector<double>& xs);

}  // namespace dasm
