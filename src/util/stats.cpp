#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace dasm {

void Summary::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Summary::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::ci95_halfwidth() const {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

LinearFit linear_fit(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  DASM_CHECK(xs.size() == ys.size());
  DASM_CHECK(xs.size() >= 2);
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) {
    fit.slope = 0.0;
    fit.intercept = sy / n;
    fit.r_squared = 0.0;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot <= 0.0) {
    fit.r_squared = 1.0;
  } else {
    double ss_res = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double r = ys[i] - (fit.slope * xs[i] + fit.intercept);
      ss_res += r * r;
    }
    fit.r_squared = 1.0 - ss_res / ss_tot;
  }
  return fit;
}

LinearFit loglog_fit(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    DASM_CHECK(xs[i] > 0.0);
    DASM_CHECK(ys[i] > 0.0);
    lx[i] = std::log2(xs[i]);
    ly[i] = std::log2(ys[i]);
  }
  return linear_fit(lx, ly);
}

LinearFit semilog_fit(const std::vector<double>& xs,
                      const std::vector<double>& ys) {
  std::vector<double> lx(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    DASM_CHECK(xs[i] > 0.0);
    lx[i] = std::log2(xs[i]);
  }
  return linear_fit(lx, ys);
}

double percentile(std::vector<double> data, double p) {
  DASM_CHECK(!data.empty());
  DASM_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(data.begin(), data.end());
  if (data.size() == 1) return data[0];
  const double rank = p / 100.0 * static_cast<double>(data.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, data.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return data[lo] * (1.0 - frac) + data[hi] * frac;
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

}  // namespace dasm
