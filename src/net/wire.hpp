// Line framing for the TCP front end (DESIGN.md §12): a LineBuffer
// accumulates raw bytes as read() delivers them — split or coalesced
// arbitrarily relative to the sender's write() calls — and yields
// complete '\n'-terminated lines one at a time.
//
// Malformed framing is survivable by construction: an overlong line (no
// newline within `max_line_bytes`) or an embedded NUL is reported once
// and the buffer resynchronizes at the next newline, so one bad line can
// be answered with a diagnostic `ERR` response without desyncing the rest
// of the stream. A trailing '\r' is stripped (CRLF clients, HTTP request
// lines).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "util/check.hpp"

namespace dasm::net {

class LineBuffer {
 public:
  enum class Next {
    kLine,      ///< `*line` holds a complete, well-formed line
    kNeedMore,  ///< no complete line buffered; append more bytes
    kOverlong,  ///< line exceeded max_line_bytes; discarded up to resync
    kNulByte,   ///< line contained an embedded NUL; discarded
  };

  explicit LineBuffer(std::size_t max_line_bytes)
      : max_(max_line_bytes) {
    DASM_CHECK_MSG(max_ >= 1, "max_line_bytes must be >= 1");
  }

  void append(std::string_view bytes) { buf_.append(bytes); }

  /// Bytes buffered but not yet consumed (partial line, or complete lines
  /// not yet extracted).
  std::size_t buffered() const { return buf_.size() - pos_; }

  /// Extracts the next line. kOverlong / kNulByte consume the offending
  /// bytes (resynchronizing at the next newline), so the caller can
  /// report the error and keep calling.
  Next next(std::string* line) {
    compact();
    for (;;) {
      if (discarding_) {
        const std::size_t nl = buf_.find('\n', pos_);
        if (nl == std::string::npos) {
          // Still inside the overlong line: drop what we have.
          buf_.clear();
          pos_ = 0;
          return Next::kNeedMore;
        }
        pos_ = nl + 1;
        discarding_ = false;
        continue;
      }
      const std::size_t nl = buf_.find('\n', pos_);
      if (nl == std::string::npos) {
        if (buffered() > max_) {
          discarding_ = true;
          return Next::kOverlong;
        }
        return Next::kNeedMore;
      }
      std::size_t len = nl - pos_;
      if (len > max_) {
        pos_ = nl + 1;
        return Next::kOverlong;
      }
      if (len > 0 && buf_[pos_ + len - 1] == '\r') --len;
      if (buf_.find('\0', pos_) < nl) {
        pos_ = nl + 1;
        return Next::kNulByte;
      }
      line->assign(buf_, pos_, len);
      pos_ = nl + 1;
      return Next::kLine;
    }
  }

 private:
  void compact() {
    // Amortized O(1): only shift once the consumed prefix dominates.
    if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
      buf_.erase(0, pos_);
      pos_ = 0;
    }
  }

  std::size_t max_;
  std::string buf_;
  std::size_t pos_ = 0;      ///< consumed prefix of buf_
  bool discarding_ = false;  ///< inside an overlong line, seeking '\n'
};

}  // namespace dasm::net
