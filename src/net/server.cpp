#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "stable/io.hpp"
#include "util/check.hpp"

namespace dasm::net {

namespace {

/// CheckError messages are single-line already, but a diagnostic echoing
/// client bytes could smuggle a newline into the response stream and
/// desync the line protocol — flatten defensively.
std::string sanitize(std::string_view message) {
  std::string out(message);
  for (char& c : out) {
    if (c == '\n' || c == '\r' || c == '\0') c = ' ';
  }
  return out;
}

svc::SvcConfig patched_svc(const ServeConfig& config) {
  svc::SvcConfig svc = config.svc;
  svc.metrics = config.metrics;
  return svc;
}

void set_nonblocking_checked(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  DASM_CHECK_MSG(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                 "fcntl(O_NONBLOCK) failed: " << std::strerror(errno));
}

}  // namespace

Server::Server(ServeConfig config)
    : config_(std::move(config)), service_(patched_svc(config_)) {
  DASM_CHECK_MSG(config_.batch_max_requests >= 1,
                 "batch_max_requests must be >= 1");
  if (config_.metrics != nullptr && obs::MetricsRegistry::enabled()) {
    obs::MetricsRegistry& reg = *config_.metrics;
    m_accepted_ = reg.counter("net.accepted");
    m_closed_ = reg.counter("net.closed");
    m_requests_ = reg.counter("net.requests");
    m_responses_ = reg.counter("net.responses");
    m_err_lines_ = reg.counter("net.err_lines");
    m_scrapes_ = reg.counter("net.scrapes");
    m_bytes_read_ = reg.counter("net.bytes_read");
    m_bytes_written_ = reg.counter("net.bytes_written");
    m_connections_ = reg.gauge("net.connections");
    m_accept_us_ = reg.histogram("time.net.accept_us");
    m_read_us_ = reg.histogram("time.net.read_us");
    m_write_us_ = reg.histogram("time.net.write_us");
    m_batch_us_ = reg.histogram("time.net.batch_us");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  DASM_CHECK_MSG(listen_fd_ >= 0,
                 "socket() failed: " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  DASM_CHECK_MSG(
      ::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) == 1,
      "invalid bind address '" << config_.bind_address << "'");
  DASM_CHECK_MSG(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)) == 0,
                 "bind(" << config_.bind_address << ":" << config_.port
                         << ") failed: " << std::strerror(errno));
  DASM_CHECK_MSG(::listen(listen_fd_, config_.backlog) == 0,
                 "listen() failed: " << std::strerror(errno));
  set_nonblocking_checked(listen_fd_);

  socklen_t len = sizeof(addr);
  DASM_CHECK_MSG(::getsockname(listen_fd_,
                               reinterpret_cast<sockaddr*>(&addr), &len) == 0,
                 "getsockname() failed: " << std::strerror(errno));
  port_ = static_cast<int>(ntohs(addr.sin_port));
}

Server::~Server() {
  for (auto& [id, conn] : conns_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

bool Server::stop_requested() const {
  if (stop_.load(std::memory_order_relaxed)) return true;
  return config_.stop_flag != nullptr &&
         config_.stop_flag->load(std::memory_order_relaxed);
}

void Server::run() {
  std::vector<pollfd> fds;
  std::vector<std::int64_t> fd_conn;  // conn id per pollfd (listen = -1)
  while (!stop_requested()) {
    fds.clear();
    fd_conn.clear();
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    fd_conn.push_back(-1);
    for (auto& [id, conn] : conns_) {
      if (conn->fd < 0) continue;
      short events = 0;
      const std::size_t backlog = conn->out.size() - conn->out_pos;
      if (!conn->close_after_flush && backlog < config_.write_high_water) {
        events |= POLLIN;
      }
      if (backlog > 0) events |= POLLOUT;
      fds.push_back(pollfd{conn->fd, events, 0});
      fd_conn.push_back(id);
    }

    const int timeout =
        service_.pending() > 0 ? 0
                               : static_cast<int>(config_.poll_interval_ms);
    const int ready = ::poll(fds.data(), fds.size(), timeout);
    if (ready < 0 && errno != EINTR) break;

    std::int64_t admitted = 0;
    for (std::size_t i = 0; ready > 0 && i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      if (fd_conn[i] < 0) {
        accept_ready();
        continue;
      }
      const auto it = conns_.find(fd_conn[i]);
      if (it == conns_.end() || it->second->fd < 0) continue;
      Connection& conn = *it->second;
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        admitted += read_ready(conn);
      }
      if (conn.fd >= 0 && (fds[i].revents & POLLOUT) != 0) {
        flush_ready(conn);
      }
    }

    // Batch trigger: the stream went idle (no admission this cycle), or
    // enough is pending to amortize a run under continuous load.
    if (service_.pending() > 0 &&
        (admitted == 0 ||
         static_cast<std::int64_t>(service_.pending()) >=
             config_.batch_max_requests)) {
      run_pending_batch();
    }

    if (config_.idle_timeout_ms > 0) {
      const auto now = std::chrono::steady_clock::now();
      for (auto& [id, conn] : conns_) {
        if (conn->fd < 0) continue;
        const auto idle = std::chrono::duration_cast<std::chrono::milliseconds>(
                              now - conn->last_activity)
                              .count();
        if (idle > config_.idle_timeout_ms) close_connection(id);
      }
    }

    if (!doomed_.empty()) {
      for (const std::int64_t id : doomed_) conns_.erase(id);
      doomed_.clear();
      m_connections_.set(static_cast<std::int64_t>(conns_.size()));
    }
  }
  drain_and_flush();
}

void Server::accept_ready() {
  const obs::ScopedTimer timer(m_accept_us_);
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN, or a transient error — retry next cycle
    set_nonblocking_checked(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>(config_.max_line_bytes);
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->last_activity = std::chrono::steady_clock::now();
    counters_.accepted.fetch_add(1, std::memory_order_relaxed);
    m_accepted_.inc();
    const std::int64_t id = conn->id;
    conns_.emplace(id, std::move(conn));
    m_connections_.set(static_cast<std::int64_t>(conns_.size()));
  }
}

std::int64_t Server::read_ready(Connection& conn) {
  const obs::ScopedTimer timer(m_read_us_);
  char buf[4096];
  bool eof = false;
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.in.append(std::string_view(buf, static_cast<std::size_t>(n)));
      m_bytes_read_.inc(n);
      conn.last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    eof = true;  // orderly shutdown (n == 0) or hard error
    break;
  }

  const std::int64_t before = counters_.requests.load(std::memory_order_relaxed);
  std::string line;
  while (conn.fd >= 0 && !conn.close_after_flush) {
    const LineBuffer::Next next = conn.in.next(&line);
    if (next == LineBuffer::Next::kNeedMore) break;
    if (next == LineBuffer::Next::kOverlong) {
      reply_err(conn, "line exceeds " + std::to_string(config_.max_line_bytes) +
                          " bytes");
      continue;
    }
    if (next == LineBuffer::Next::kNulByte) {
      reply_err(conn, "line contains an embedded NUL byte");
      continue;
    }
    handle_line(conn, line);
  }

  if (eof && conn.fd >= 0) {
    // Peer finished sending; flush what we owe it, then close. Responses
    // to its already-admitted requests are still routed and flushed.
    conn.close_after_flush = true;
    if (conn.out.size() == conn.out_pos && !routes_pending_for(conn.id)) {
      close_connection(conn.id);
    }
  }
  return counters_.requests.load(std::memory_order_relaxed) - before;
}

bool Server::routes_pending_for(std::int64_t conn_id) const {
  for (const auto& [id, route] : routes_) {
    if (route.conn_id == conn_id) return true;
  }
  return false;
}

void Server::handle_line(Connection& conn, const std::string& line) {
  if (conn.mode == Connection::Mode::kNew) {
    handle_first_line(conn, line);
    return;
  }
  // kHttp connections never reach here (close_after_flush is set).
  std::istringstream ls(line);
  std::string kind;
  if (!(ls >> kind)) return;  // blank line: ignore
  if (kind == "request") {
    handle_request_line(conn, ls);
  } else if (kind == "instance") {
    handle_instance_line(conn, ls);
  } else {
    reply_err(conn, "expected 'request' or 'instance', got '" +
                        sanitize(kind) + "'");
  }
}

void Server::handle_first_line(Connection& conn, const std::string& line) {
  if (line == "dasm-requests 1") {
    conn.mode = Connection::Mode::kProto;
    append_out(conn, "dasm-responses 1\n");
    return;
  }
  if (line.rfind("GET ", 0) == 0) {
    conn.mode = Connection::Mode::kHttp;
    // Set before the write: if the response flushes inline, flush_ready
    // closes the connection right away.
    conn.close_after_flush = true;
    serve_http(conn, line);
    return;
  }
  conn.close_after_flush = true;
  reply_err(conn, "expected 'dasm-requests 1' header or an HTTP GET");
}

void Server::handle_request_line(Connection& conn, std::istream& rest) {
  try {
    const svc::Request req = svc::parse_request(rest);
    if (service_.instances().find(req.instance) == nullptr) {
      reply_err(conn, "request names unregistered instance '" +
                          sanitize(req.instance) + "'");
      return;
    }
    const std::int64_t id = service_.submit(req);
    if (id < 0) {
      counters_.shed.fetch_add(1, std::memory_order_relaxed);
      append_out(conn, "ERR shed\n");
      return;
    }
    routes_[id] = Route{conn.id, conn.next_seq++};
    counters_.requests.fetch_add(1, std::memory_order_relaxed);
    m_requests_.inc();
  } catch (const CheckError& e) {
    reply_err(conn, sanitize(e.what()));
  }
}

void Server::handle_instance_line(Connection& conn, std::istream& rest) {
  try {
    const svc::RequestFile::InstanceDecl decl = svc::parse_instance_decl(rest);
    if (service_.instances().find(decl.name) != nullptr) {
      reply_err(conn,
                "instance '" + sanitize(decl.name) + "' already registered");
      return;
    }
    service_.instances().add(decl.name,
                             decl.from_file
                                 ? load_instance_file(decl.path)
                                 : svc::make_declared_instance(decl));
    // Success is silent, so a protocol conversation's response stream is
    // byte-identical to the `dasm batch` log for the same request file.
  } catch (const CheckError& e) {
    reply_err(conn, sanitize(e.what()));
  }
}

void Server::serve_http(Connection& conn, const std::string& request_line) {
  std::istringstream ls(request_line);
  std::string method, path;
  ls >> method >> path;
  std::string body;
  const char* status = "200 OK";
  if (path == "/metrics" || path.rfind("/metrics?", 0) == 0) {
    // A fresh snapshot per scrape; the registry is process-lifetime and
    // never reset, so every exported counter is monotonic across scrapes.
    std::ostringstream os;
    if (config_.metrics != nullptr) {
      obs::write_prometheus(os, config_.metrics->snapshot());
    }
    body = os.str();
    counters_.scrapes.fetch_add(1, std::memory_order_relaxed);
    m_scrapes_.inc();
  } else {
    status = "404 Not Found";
    body = "not found\n";
  }
  std::ostringstream resp;
  resp << "HTTP/1.0 " << status << "\r\n"
       << "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
       << "Content-Length: " << body.size() << "\r\n"
       << "Connection: close\r\n\r\n"
       << body;
  append_out(conn, resp.str());
}

void Server::reply_err(Connection& conn, const std::string& diagnostic) {
  counters_.err_lines.fetch_add(1, std::memory_order_relaxed);
  m_err_lines_.inc();
  append_out(conn, "ERR " + diagnostic + "\n");
}

void Server::append_out(Connection& conn, std::string_view bytes) {
  if (conn.fd < 0) return;
  if (conn.out.size() - conn.out_pos + bytes.size() >
      config_.write_buffer_limit) {
    // The consumer is too slow even after backpressure paused its reads:
    // drop it rather than buffer unboundedly.
    close_connection(conn.id);
    return;
  }
  conn.out.append(bytes);
  flush_ready(conn);
}

void Server::flush_ready(Connection& conn) {
  if (conn.fd < 0) return;
  const obs::ScopedTimer timer(m_write_us_);
  while (conn.out_pos < conn.out.size()) {
    const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_pos,
                             conn.out.size() - conn.out_pos, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      close_connection(conn.id);
      return;
    }
    conn.out_pos += static_cast<std::size_t>(n);
    m_bytes_written_.inc(n);
    conn.last_activity = std::chrono::steady_clock::now();
  }
  conn.out.clear();
  conn.out_pos = 0;
  if (conn.close_after_flush && !routes_pending_for(conn.id)) {
    close_connection(conn.id);
  }
}

void Server::run_pending_batch() {
  const obs::ScopedTimer timer(m_batch_us_);
  service_.run_batch();
  counters_.batches.fetch_add(1, std::memory_order_relaxed);
  std::ostringstream os;
  for (svc::Response& resp : service_.take_responses()) {
    const auto it = routes_.find(resp.id);
    DASM_DCHECK(it != routes_.end());
    if (it == routes_.end()) continue;
    const Route route = it->second;
    routes_.erase(it);
    const auto conn_it = conns_.find(route.conn_id);
    if (conn_it == conns_.end() || conn_it->second->fd < 0) {
      continue;  // connection went away while its request was in flight
    }
    resp.id = route.seq;  // global arrival ordinal -> per-connection seq
    os.str(std::string());
    resp.write_line(os);
    counters_.responses.fetch_add(1, std::memory_order_relaxed);
    m_responses_.inc();
    append_out(*conn_it->second, os.str());
    // A finished peer (EOF already seen) lingers only for its responses.
    Connection& conn = *conn_it->second;
    if (conn.fd >= 0 && conn.close_after_flush &&
        conn.out.size() == conn.out_pos && !routes_pending_for(conn.id)) {
      close_connection(conn.id);
    }
  }
}

void Server::close_connection(std::int64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end() || it->second->fd < 0) return;
  ::close(it->second->fd);
  it->second->fd = -1;
  counters_.closed.fetch_add(1, std::memory_order_relaxed);
  m_closed_.inc();
  doomed_.push_back(conn_id);
}

void Server::drain_and_flush() {
  // Graceful drain: no new connections, no new reads — every already-
  // admitted request still executes and every response line is flushed.
  ::close(listen_fd_);
  listen_fd_ = -1;
  while (service_.pending() > 0) run_pending_batch();

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(config_.drain_flush_timeout_ms);
  std::vector<pollfd> fds;
  std::vector<std::int64_t> fd_conn;
  for (;;) {
    fds.clear();
    fd_conn.clear();
    for (auto& [id, conn] : conns_) {
      if (conn->fd < 0 || conn->out_pos >= conn->out.size()) continue;
      fds.push_back(pollfd{conn->fd, POLLOUT, 0});
      fd_conn.push_back(id);
    }
    if (fds.empty() || std::chrono::steady_clock::now() >= deadline) break;
    const int ready = ::poll(fds.data(), fds.size(), 50);
    if (ready < 0 && errno != EINTR) break;
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLOUT | POLLHUP | POLLERR)) == 0) continue;
      const auto it = conns_.find(fd_conn[i]);
      if (it != conns_.end()) flush_ready(*it->second);
    }
  }
  for (auto& [id, conn] : conns_) {
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
  conns_.clear();
  routes_.clear();
  m_connections_.set(0);
}

}  // namespace dasm::net
