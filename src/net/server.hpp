// TCP front end for the matching service (DESIGN.md §12): a poll-based
// accept loop that speaks the line-oriented request/response wire format
// of src/svc/request.hpp over TCP, feeding MatchService::submit()/
// run_batch() and streaming response lines back per connection.
//
// Protocol. A connection's first line selects its mode:
//
//   dasm-requests 1          -> protocol mode; the server greets with
//                               "dasm-responses 1" and then accepts
//                               `instance` / `request` lines (the exact
//                               request-file grammar). Successful
//                               registrations are silent — so a single
//                               connection replaying a request file
//                               receives, byte for byte, the response
//                               stream `dasm batch` would have written.
//   GET /metrics HTTP/1.x    -> one-shot HTTP scrape: a fresh
//                               MetricsRegistry snapshot serialized via
//                               write_prometheus, then close. Any other
//                               path is a 404.
//   anything else            -> "ERR ..." diagnostic, then close.
//
// Ordering/demux contract (the per-connection story the ROADMAP flagged):
// internally responses commit in global arrival order — submit() tags
// each admitted request with (connection id, per-connection sequence
// number), and after every batch the router rewrites each committed
// response's id to that per-connection sequence before appending it to
// its own connection's write buffer. Each connection therefore receives
// exactly its own responses, in its own submission order, numbered
// 0,1,2,... regardless of how many connections interleave. Failed lines
// answer immediately with a single "ERR <diagnostic>" line (no sequence
// number, does not consume one); a full admission queue answers
// "ERR shed". ERR lines interleave with response lines in processing
// order, not submission order.
//
// Batching: admitted requests stay queued while the sockets are busy; a
// batch runs as soon as a poll cycle delivers no new request line (the
// stream went idle) or `batch_max_requests` are pending. This keeps
// single-request latency at one poll cycle while letting a streaming
// client amortize scheduling across the whole batch.
//
// Backpressure: each connection has a bounded write buffer. Above
// `write_high_water` the server stops reading from that connection (so a
// slow consumer throttles its own request stream, not the service);
// above `write_buffer_limit` the connection is dropped.
//
// Shutdown: request_stop() (or the CLI's SIGTERM flag) triggers a
// graceful drain — stop accepting, stop reading, run every pending
// request to completion, flush all write buffers, then close.
//
// Registry lifetime (DESIGN.md §12): the server never owns the metrics
// registry — the process does. Counters accumulate monotonically for the
// whole process lifetime and a scrape serializes a fresh snapshot without
// resetting anything, which is exactly the Prometheus counter contract:
// resets happen only when the process restarts, and rate() handles those.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "svc/service.hpp"

namespace dasm::net {

struct ServeConfig {
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via Server::port).
  int port = 0;
  int backlog = 64;
  /// Framing limit; longer lines are answered with "ERR line too long"
  /// and discarded up to the next newline (see net/wire.hpp).
  std::size_t max_line_bytes = 1 << 16;
  /// Backpressure: stop reading from a connection whose write buffer
  /// exceeds the high-water mark; drop it at the hard limit.
  std::size_t write_high_water = 1 << 18;
  std::size_t write_buffer_limit = 1 << 20;
  /// Connections idle (no bytes in either direction) longer than this are
  /// closed. 0 disables the timeout.
  std::int64_t idle_timeout_ms = 30000;
  /// Run a batch once this many requests are pending even if the sockets
  /// are still busy. Kept below svc.queue_capacity so a well-behaved
  /// streaming client never sees "ERR shed".
  std::int64_t batch_max_requests = 256;
  /// Poll timeout while idle — bounds the latency of noticing stop
  /// requests and idle timeouts.
  std::int64_t poll_interval_ms = 50;
  /// How long the graceful drain waits for slow consumers to take their
  /// flushed responses before closing anyway.
  std::int64_t drain_flush_timeout_ms = 5000;
  /// The embedded service (threads, queue capacity, cache, shards).
  /// svc.metrics is overridden with `metrics` below.
  svc::SvcConfig svc;
  /// Process-lifetime metrics registry: the service layer's svc.* metrics
  /// and the server's net.* counters / time.net.* histograms record here,
  /// and GET /metrics serializes a fresh snapshot per scrape. Non-owning;
  /// nullptr runs unobserved.
  obs::MetricsRegistry* metrics = nullptr;
  /// External stop flag (the CLI points this at its signal-handler flag);
  /// checked every poll cycle, same effect as request_stop().
  const std::atomic<bool>* stop_flag = nullptr;
};

/// Monotonic totals readable from any thread while the server runs (the
/// registry itself is server-thread-only between scrapes) — the test
/// suite synchronizes on these.
struct ServeCounters {
  std::atomic<std::int64_t> accepted{0};
  std::atomic<std::int64_t> closed{0};
  std::atomic<std::int64_t> requests{0};   ///< request lines admitted
  std::atomic<std::int64_t> responses{0};  ///< response lines buffered
  std::atomic<std::int64_t> shed{0};       ///< "ERR shed" answers
  std::atomic<std::int64_t> err_lines{0};  ///< diagnostic ERR answers
  std::atomic<std::int64_t> scrapes{0};    ///< GET /metrics served
  std::atomic<std::int64_t> batches{0};
};

class Server {
 public:
  /// Binds and listens immediately (so port() is valid before run()), but
  /// accepts nothing until run(). Throws CheckError on socket errors.
  explicit Server(ServeConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound TCP port (resolves ephemeral binds).
  int port() const { return port_; }

  /// The embedded service. Driver-thread-only while run() is live; tests
  /// use it to preload instances before starting and to audit SvcStats
  /// after run() returns.
  svc::MatchService& service() { return service_; }

  /// Runs the accept loop until request_stop() / the configured stop
  /// flag, then drains gracefully: stop accepting and reading, finish
  /// every pending request, flush, close.
  void run();

  /// Thread-safe; run() notices within one poll interval.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

  const ServeCounters& counters() const { return counters_; }

 private:
  struct Connection {
    int fd = -1;
    std::int64_t id = 0;
    enum class Mode : std::uint8_t { kNew, kProto, kHttp } mode = Mode::kNew;
    LineBuffer in;
    std::string out;
    std::size_t out_pos = 0;
    std::int64_t next_seq = 0;  ///< per-connection response numbering
    std::chrono::steady_clock::time_point last_activity;
    bool close_after_flush = false;

    explicit Connection(std::size_t max_line_bytes) : in(max_line_bytes) {}
  };

  struct Route {
    std::int64_t conn_id = 0;
    std::int64_t seq = 0;
  };

  bool stop_requested() const;
  void accept_ready();
  /// Reads fd until EAGAIN and handles every complete line. Returns the
  /// number of request lines admitted (the batch trigger's "busy" signal).
  std::int64_t read_ready(Connection& conn);
  void handle_line(Connection& conn, const std::string& line);
  void handle_first_line(Connection& conn, const std::string& line);
  void handle_request_line(Connection& conn, std::istream& rest);
  void handle_instance_line(Connection& conn, std::istream& rest);
  void serve_http(Connection& conn, const std::string& request_line);
  void reply_err(Connection& conn, const std::string& diagnostic);
  void append_out(Connection& conn, std::string_view bytes);
  void flush_ready(Connection& conn);
  void run_pending_batch();
  void close_connection(std::int64_t conn_id);
  void drain_and_flush();
  /// True while any admitted request of this connection still awaits its
  /// response (keeps an EOF'd peer alive until everything it is owed has
  /// been routed and flushed).
  bool routes_pending_for(std::int64_t conn_id) const;

  ServeConfig config_;
  svc::MatchService service_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::int64_t next_conn_id_ = 0;
  // unordered_map keeps Connection addresses stable across accepts; the
  // poll set is rebuilt per cycle from it.
  std::unordered_map<std::int64_t, std::unique_ptr<Connection>> conns_;
  std::unordered_map<std::int64_t, Route> routes_;  ///< service id -> conn
  std::vector<std::int64_t> doomed_;  ///< closed mid-cycle, reaped after
  ServeCounters counters_;

  // net.* metrics (inactive when config_.metrics == nullptr).
  obs::CounterHandle m_accepted_;
  obs::CounterHandle m_closed_;
  obs::CounterHandle m_requests_;
  obs::CounterHandle m_responses_;
  obs::CounterHandle m_err_lines_;
  obs::CounterHandle m_scrapes_;
  obs::CounterHandle m_bytes_read_;
  obs::CounterHandle m_bytes_written_;
  obs::GaugeHandle m_connections_;
  obs::HistogramHandle m_accept_us_;
  obs::HistogramHandle m_read_us_;
  obs::HistogramHandle m_write_us_;
  obs::HistogramHandle m_batch_us_;
};

}  // namespace dasm::net
